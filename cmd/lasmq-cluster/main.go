// Command lasmq-cluster runs the Table I workload (the paper's testbed
// experiment) on the task-level cluster simulator under a chosen scheduling
// policy and reports response times, per-bin means and slowdowns.
//
// Usage:
//
//	lasmq-cluster [-scheduler lasmq|las|fair|fifo|sjf|srtf] [-interval 80]
//	              [-seed 1] [-containers 120] [-max-running 30]
//	              [-failure-prob 0] [-straggler-prob 0] [-straggler-factor 3]
//	              [-speculation] [-queues 10] [-threshold 100] [-step 10]
//	              [-decay 8] [-jobs-csv] [-cdf]
package main

import (
	"flag"
	"fmt"
	"os"

	"lasmq/internal/cli"
	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/sched"
	"lasmq/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasmq-cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		schedName = flag.String("scheduler", "lasmq", "scheduling policy: "+cli.SchedulerNames())
		interval  = flag.Float64("interval", 80, "mean Poisson inter-arrival time (seconds)")
		seed      = flag.Int64("seed", 1, "workload seed")
		sigma     = flag.Float64("duration-sigma", 0.4, "lognormal task-duration skew (0 = none)")

		containers = flag.Int("containers", 120, "cluster capacity in containers")
		maxRunning = flag.Int("max-running", 30, "job admission limit (0 = unlimited)")
		failProb   = flag.Float64("failure-prob", 0, "task attempt failure probability")
		stragProb  = flag.Float64("straggler-prob", 0, "straggler probability per attempt")
		stragFact  = flag.Float64("straggler-factor", 3, "straggler duration multiplier")
		specul     = flag.Bool("speculation", false, "enable speculative execution")

		queues    = flag.Int("queues", 10, "LAS_MQ: number of queues")
		threshold = flag.Float64("threshold", 100, "LAS_MQ: first queue threshold (container-seconds)")
		step      = flag.Float64("step", 10, "LAS_MQ: threshold step")
		decay     = flag.Float64("decay", 8, "LAS_MQ: cross-queue weight decay")
		noStage   = flag.Bool("no-stage-awareness", false, "LAS_MQ: disable stage awareness")
		noOrder   = flag.Bool("no-ordering", false, "LAS_MQ: disable in-queue ordering by demand")

		jobsCSV  = flag.Bool("jobs-csv", false, "print per-job results as CSV")
		showCDF  = flag.Bool("cdf", false, "print the response-time CDF")
		timeline = flag.Float64("timeline", 0, "print a utilization timeline as CSV, sampled every N seconds")
		queueCSV = flag.Float64("queue-timeline", 0, "print LAS_MQ per-queue occupancy as CSV, sampled every N seconds (lasmq scheduler only)")
	)
	flag.Parse()

	mqCfg := core.Config{
		Queues:           *queues,
		FirstThreshold:   *threshold,
		Step:             *step,
		QueueWeightDecay: *decay,
		StageAware:       !*noStage,
		OrderByDemand:    !*noOrder,
	}
	policy, err := cli.BuildScheduler(*schedName, mqCfg)
	if err != nil {
		return err
	}
	var recorder *core.QueueRecorder
	if *queueCSV > 0 {
		mq, ok := policy.(*core.LASMQ)
		if !ok {
			return fmt.Errorf("-queue-timeline requires the lasmq scheduler, got %s", policy.Name())
		}
		recorder = core.NewQueueRecorder(mq, *queueCSV)
		policy = recorder
	}

	wcfg := workload.Config{MeanInterval: *interval, DurationSigma: *sigma, Seed: *seed}
	specs, err := workload.Generate(wcfg)
	if err != nil {
		return err
	}

	ecfg := engine.Config{
		Containers:      *containers,
		MaxRunningJobs:  *maxRunning,
		FailureProb:     *failProb,
		StragglerProb:   *stragProb,
		StragglerFactor: *stragFact,
		Speculation:     *specul,
		Seed:            *seed,
		SampleInterval:  *timeline,
	}
	res, err := engine.Run(specs, policy, ecfg)
	if err != nil {
		return err
	}

	if *jobsCSV {
		fmt.Println("id,name,bin,arrival,admitted,completed,response,service,attempts,failures,speculative")
		for _, jr := range res.Jobs {
			fmt.Printf("%d,%s,%d,%g,%g,%g,%g,%g,%d,%d,%d\n",
				jr.ID, jr.Name, jr.Bin, jr.Arrival, jr.Admitted, jr.Completed,
				jr.ResponseTime, jr.Service, jr.Attempts, jr.Failures, jr.Speculative)
		}
		return nil
	}

	fmt.Printf("scheduler=%s interval=%gs jobs=%d containers=%d load=%.2f makespan=%.0fs\n",
		res.Scheduler, *interval, len(res.Jobs), *containers,
		workload.Load(workload.TableI(), *interval, *containers), res.Makespan)
	cli.PrintSummary(os.Stdout, "response times", res.ResponseTimes())

	bins := make([]int, len(res.Jobs))
	for i, jr := range res.Jobs {
		bins[i] = jr.Bin
	}
	if err := cli.PrintBinMeans(os.Stdout, bins, res.ResponseTimes()); err != nil {
		return err
	}

	// Slowdowns against isolated runtimes.
	slowdowns := make([]float64, 0, len(res.Jobs))
	for i := range specs {
		iso, err := engine.RunIsolated(specs[i], sched.NewFIFO(), ecfg)
		if err != nil {
			return err
		}
		slowdowns = append(slowdowns, res.Jobs[i].ResponseTime/iso)
	}
	cli.PrintSummary(os.Stdout, "slowdowns", slowdowns)

	if *showCDF {
		cli.PrintCDF(os.Stdout, res.ResponseTimes(), 50)
	}
	if *timeline > 0 {
		fmt.Println("time,used_containers,running_jobs,waiting_jobs")
		for _, s := range res.Timeline {
			fmt.Printf("%g,%d,%d,%d\n", s.Time, s.UsedContainers, s.RunningJobs, s.WaitingJobs)
		}
	}
	if recorder != nil {
		fmt.Print("time")
		for q := 0; q < *queues; q++ {
			fmt.Printf(",queue%d", q)
		}
		fmt.Println()
		for _, s := range recorder.Samples() {
			fmt.Printf("%g", s.Time)
			for _, n := range s.Sizes {
				fmt.Printf(",%d", n)
			}
			fmt.Println()
		}
	}
	return nil
}
