// Command lasmq-trace synthesizes and inspects the simulation traces: the
// heavy-tailed Facebook-2010-like trace and the uniform light-tailed
// workload, in the CSV format lasmq-sim replays.
//
// Usage:
//
//	lasmq-trace -kind facebook|uniform [-jobs N] [-seed 1] [-out trace.csv]
//	lasmq-trace -describe trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"lasmq/internal/fluid"
	"lasmq/internal/stats"
	"lasmq/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasmq-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		kind     = flag.String("kind", "facebook", "trace kind: facebook or uniform")
		jobs     = flag.Int("jobs", 0, "job count (default: paper scale)")
		seed     = flag.Int64("seed", 1, "synthesis seed")
		out      = flag.String("out", "", "output file (default: stdout)")
		describe = flag.String("describe", "", "describe an existing CSV trace instead of generating")
	)
	flag.Parse()

	if *describe != "" {
		f, err := os.Open(*describe)
		if err != nil {
			return err
		}
		defer f.Close()
		specs, err := trace.ReadCSV(f)
		if err != nil {
			return err
		}
		describeTrace(os.Stdout, specs)
		return nil
	}

	var (
		specs []fluid.JobSpec
		err   error
	)
	switch *kind {
	case "facebook":
		cfg := trace.DefaultFacebookConfig()
		if *jobs > 0 {
			cfg.Jobs = *jobs
		}
		cfg.Seed = *seed
		specs, err = trace.Facebook(cfg)
	case "uniform":
		n := 10000
		if *jobs > 0 {
			n = *jobs
		}
		specs, err = trace.Uniform(n, 10000, *seed)
	default:
		return fmt.Errorf("unknown trace kind %q (want facebook or uniform)", *kind)
	}
	if err != nil {
		return err
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteCSV(w, specs); err != nil {
		return err
	}
	if *out != "" {
		fmt.Printf("wrote %d jobs to %s\n", len(specs), *out)
	}
	return nil
}

func describeTrace(w io.Writer, specs []fluid.JobSpec) {
	sizes := make([]float64, len(specs))
	widths := make([]float64, len(specs))
	var horizon float64
	for i, s := range specs {
		sizes[i] = s.Size
		widths[i] = s.Width
		if s.Arrival > horizon {
			horizon = s.Arrival
		}
	}
	sorted := append([]float64(nil), sizes...)
	sort.Float64s(sorted)
	var total float64
	for _, s := range sorted {
		total += s
	}
	sz := stats.Summarize(sizes)
	fmt.Fprintf(w, "jobs: %d\n", len(specs))
	fmt.Fprintf(w, "sizes: mean=%.4g median=%.4g p90=%.4g p99=%.4g max=%.4g\n",
		sz.Mean, sz.P50, sz.P90, sz.P99, sz.Max)
	fmt.Fprintf(w, "widths: mean=%.4g max=%.4g\n",
		stats.Mean(widths), stats.Percentile(widths, 1))
	fmt.Fprintf(w, "arrival horizon: %.4g\n", horizon)
	if horizon > 0 {
		fmt.Fprintf(w, "offered service rate: %.4g container-units/unit-time\n", total/horizon)
	}
	// Tail mass: fraction of total work in the top 1%% of jobs.
	top := sorted[len(sorted)-max(1, len(sorted)/100):]
	var topSum float64
	for _, s := range top {
		topSum += s
	}
	fmt.Fprintf(w, "work in top 1%% of jobs: %.1f%%\n", 100*topSum/total)
}
