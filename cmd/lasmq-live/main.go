// Command lasmq-live runs a scaled-down Table I workload on the live
// mini-YARN cluster (real goroutines and scaled wall-clock time, not a
// simulation) under a chosen scheduling policy.
//
// Usage:
//
//	lasmq-live [-scheduler lasmq|las|fair|fifo|sjf|srtf] [-jobs 20] [-seed 1]
//	           [-nodes 4] [-containers-per-node 30] [-max-running 30]
//	           [-time-scale 500us] [-interval 30] [-debug-addr :8090]
//
// -debug-addr serves live scheduler telemetry (job/task counts, queue
// demotions, admission backlog — see internal/obs) as JSON on
// http://ADDR/debug/schedvars while the workload runs, expvar-style; the
// same counters print as a summary when the run drains.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"lasmq/internal/cli"
	"lasmq/internal/core"
	"lasmq/internal/dist"
	"lasmq/internal/job"
	"lasmq/internal/obs"
	"lasmq/internal/stats"
	"lasmq/internal/workload"
	"lasmq/internal/yarn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasmq-live:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		schedName  = flag.String("scheduler", "lasmq", "scheduling policy: "+cli.SchedulerNames())
		jobs       = flag.Int("jobs", 20, "number of jobs to submit")
		seed       = flag.Int64("seed", 1, "workload seed")
		nodes      = flag.Int("nodes", 4, "node managers")
		perNode    = flag.Int("containers-per-node", 30, "containers per node")
		maxRunning = flag.Int("max-running", 30, "admission limit (0 = unlimited)")
		timeScale  = flag.Duration("time-scale", 500*time.Microsecond, "wall time per cluster second")
		interval   = flag.Float64("interval", 30, "mean arrival interval in cluster seconds")
		timeout    = flag.Duration("timeout", 5*time.Minute, "drain timeout")
		debugAddr  = flag.String("debug-addr", "", "serve live telemetry counters as JSON on http://ADDR/debug/schedvars")
	)
	flag.Parse()

	policy, err := cli.BuildScheduler(*schedName, core.DefaultConfig())
	if err != nil {
		return err
	}
	counters := obs.NewCounters()
	cfg := yarn.Config{
		Nodes:             *nodes,
		ContainersPerNode: *perNode,
		MaxRunningJobs:    *maxRunning,
		TimeScale:         *timeScale,
		HeartbeatInterval: 10 * *timeScale,
		Probe:             counters,
	}
	if *debugAddr != "" {
		if err := serveDebug(*debugAddr, counters); err != nil {
			return err
		}
	}
	cluster, err := yarn.New(cfg, policy)
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Shutdown()

	// Draw a downsized Table I-style mix: scale task counts so the live run
	// finishes quickly while keeping the bin structure.
	specs, err := liveWorkload(*jobs, *seed)
	if err != nil {
		return err
	}
	r := dist.New(*seed)
	arrivals, err := dist.NewPoissonProcess(r, *interval)
	if err != nil {
		return err
	}

	start := time.Now()
	prev := 0.0
	for i := range specs {
		next := arrivals.Next()
		gap := time.Duration((next - prev) * float64(*timeScale))
		prev = next
		time.Sleep(gap)
		if err := cluster.Submit(specs[i]); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	reports, err := cluster.Drain(ctx)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	responses := make([]float64, 0, len(reports))
	bins := make([]int, 0, len(reports))
	for _, rep := range reports {
		responses = append(responses, rep.Response)
		bins = append(bins, rep.Bin)
	}
	fmt.Printf("scheduler=%s jobs=%d cluster=%dx%d wall=%v\n",
		policy.Name(), len(reports), *nodes, *perNode, wall.Round(time.Millisecond))
	cli.PrintSummary(os.Stdout, "response times (cluster seconds)", responses)
	if err := cli.PrintBinMeans(os.Stdout, bins, responses); err != nil {
		return err
	}
	fmt.Printf("jain fairness of responses: %.2f\n", stats.JainIndex(responses))
	fmt.Println("telemetry:")
	snap := counters.Snapshot()
	snap.WriteSummary(os.Stdout)
	return nil
}

// serveDebug exposes the counters on an expvar-style HTTP endpoint. The
// obs.Counters sink is internally locked, so snapshots taken by request
// handlers are safe against the ResourceManager's concurrent updates.
func serveDebug(addr string, counters *obs.Counters) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/schedvars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(counters.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	fmt.Printf("telemetry endpoint: http://%s/debug/schedvars\n", ln.Addr())
	go http.Serve(ln, mux) //nolint:errcheck // endpoint dies with the process
	return nil
}

// liveWorkload downsizes the Table I mix (task counts divided by ~6) so a
// live run completes in seconds at sub-millisecond time scales.
func liveWorkload(jobs int, seed int64) ([]job.Spec, error) {
	types := workload.TableI()
	for i := range types {
		types[i].Maps = max(2, types[i].Maps/6)
		types[i].Reduces = max(1, types[i].Reduces/6)
		types[i].MapMean /= 2
		types[i].ReduceMean /= 2
		// Rescale the per-type counts to the requested total.
		types[i].Count = max(1, types[i].Count*jobs/100)
	}
	wcfg := workload.Config{MeanInterval: 1, DurationSigma: 0.4, Seed: seed}
	specs, err := workload.GenerateMix(types, wcfg)
	if err != nil {
		return nil, err
	}
	// Arrivals are driven live by the caller; clear the generated ones.
	for i := range specs {
		specs[i].Arrival = 0
	}
	return specs, nil
}
