// Command lasmq-live runs a scaled-down Table I workload on the live
// mini-YARN cluster (real goroutines and scaled wall-clock time, not a
// simulation) under a chosen scheduling policy.
//
// Usage:
//
//	lasmq-live [-scheduler lasmq|las|fair|fifo|sjf|srtf] [-jobs 20] [-seed 1]
//	           [-nodes 4] [-containers-per-node 30] [-max-running 30]
//	           [-time-scale 500us] [-interval 30] [-debug-addr :8090]
//
// The ResourceManager's probe is a lock-free flight-recorder ring
// (obs.Ring): the scheduling goroutine records fixed-size events with no
// locks and no allocation, and a consumer goroutine drains them into the
// aggregating sinks (counters, histograms, round-sampled series) off the
// hot path. -debug-addr serves that telemetry while the workload runs:
//
//	/metrics          Prometheus text exposition (counters + histograms)
//	/debug/schedvars  counter snapshot as JSON, expvar-style
//	/debug/schedhist  latency histograms (quantiles + buckets) as JSON
//
// The same counters print as a summary when the run drains; the HTTP
// server is shut down cleanly (listener closed, in-flight scrapes drained)
// before the process exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"lasmq/internal/cli"
	"lasmq/internal/core"
	"lasmq/internal/dist"
	"lasmq/internal/job"
	"lasmq/internal/obs"
	"lasmq/internal/stats"
	"lasmq/internal/workload"
	"lasmq/internal/yarn"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasmq-live:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		schedName  = flag.String("scheduler", "lasmq", "scheduling policy: "+cli.SchedulerNames())
		jobs       = flag.Int("jobs", 20, "number of jobs to submit")
		seed       = flag.Int64("seed", 1, "workload seed")
		nodes      = flag.Int("nodes", 4, "node managers")
		perNode    = flag.Int("containers-per-node", 30, "containers per node")
		maxRunning = flag.Int("max-running", 30, "admission limit (0 = unlimited)")
		timeScale  = flag.Duration("time-scale", 500*time.Microsecond, "wall time per cluster second")
		interval   = flag.Float64("interval", 30, "mean arrival interval in cluster seconds")
		timeout    = flag.Duration("timeout", 5*time.Minute, "drain timeout")
		debugAddr  = flag.String("debug-addr", "", "serve live telemetry counters as JSON on http://ADDR/debug/schedvars")
	)
	flag.Parse()

	policy, err := cli.BuildScheduler(*schedName, core.DefaultConfig())
	if err != nil {
		return err
	}
	// The ResourceManager emits all probe events from its single scheduling
	// goroutine, so a single-producer flight-recorder ring can replace the
	// mutex-guarded sinks on the hot path; the recorder goroutine is the one
	// consumer, folding events into the aggregating sinks.
	ring := obs.NewRing(1 << 16)
	counters := obs.NewCounters()
	hists := obs.NewHistograms()
	series := obs.NewSeries(10, *nodes**perNode)
	rec := startRecorder(ring, obs.Multi(counters, hists, series))
	cfg := yarn.Config{
		Nodes:             *nodes,
		ContainersPerNode: *perNode,
		MaxRunningJobs:    *maxRunning,
		TimeScale:         *timeScale,
		HeartbeatInterval: 10 * *timeScale,
		Probe:             ring,
	}
	var stopDebug func() error
	if *debugAddr != "" {
		stopDebug, err = serveDebug(*debugAddr, counters, hists)
		if err != nil {
			return err
		}
	}
	cluster, err := yarn.New(cfg, policy)
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Shutdown()

	// Draw a downsized Table I-style mix: scale task counts so the live run
	// finishes quickly while keeping the bin structure.
	specs, err := liveWorkload(*jobs, *seed)
	if err != nil {
		return err
	}
	r := dist.New(*seed)
	arrivals, err := dist.NewPoissonProcess(r, *interval)
	if err != nil {
		return err
	}

	start := time.Now()
	prev := 0.0
	for i := range specs {
		next := arrivals.Next()
		gap := time.Duration((next - prev) * float64(*timeScale))
		prev = next
		time.Sleep(gap)
		if err := cluster.Submit(specs[i]); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	reports, err := cluster.Drain(ctx)
	if err != nil {
		return err
	}
	wall := time.Since(start)

	// The run is over: fold the ring's remaining events into the sinks so
	// the summary below is complete, then retire the debug server — closing
	// its listener and draining in-flight scrapes — before reporting.
	lost := rec.stop()
	if stopDebug != nil {
		if err := stopDebug(); err != nil {
			return fmt.Errorf("debug server shutdown: %w", err)
		}
	}

	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	responses := make([]float64, 0, len(reports))
	bins := make([]int, 0, len(reports))
	for _, rep := range reports {
		responses = append(responses, rep.Response)
		bins = append(bins, rep.Bin)
	}
	fmt.Printf("scheduler=%s jobs=%d cluster=%dx%d wall=%v\n",
		policy.Name(), len(reports), *nodes, *perNode, wall.Round(time.Millisecond))
	cli.PrintSummary(os.Stdout, "response times (cluster seconds)", responses)
	if err := cli.PrintBinMeans(os.Stdout, bins, responses); err != nil {
		return err
	}
	fmt.Printf("jain fairness of responses: %.2f\n", stats.JainIndex(responses))
	fmt.Println("telemetry:")
	snap := counters.Snapshot()
	snap.WriteSummary(os.Stdout)
	if resp, ok := hists.Histogram(obs.HistResponse); ok && resp.Count() > 0 {
		s := resp.Snapshot()
		fmt.Printf("  response hist  p50 %.4g  p90 %.4g  p99 %.4g (n=%d)\n", s.P50, s.P90, s.P99, s.Count)
	}
	fmt.Printf("  flight recorder %d event(s) recorded, %d lost\n", ring.Recorded(), lost)
	return nil
}

// recorder is the flight-recorder ring's single consumer: a goroutine that
// periodically drains packed events into the aggregating sinks, keeping all
// mutex-taking sink work off the ResourceManager's scheduling goroutine.
type recorder struct {
	ring *obs.Ring
	sink obs.Probe
	quit chan struct{}
	done chan struct{}
	lost uint64
}

func startRecorder(ring *obs.Ring, sink obs.Probe) *recorder {
	rec := &recorder{ring: ring, sink: sink, quit: make(chan struct{}), done: make(chan struct{})}
	go rec.loop()
	return rec
}

func (rec *recorder) loop() {
	defer close(rec.done)
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-rec.quit:
			_, lost := rec.ring.Drain(rec.sink)
			rec.lost += lost
			return
		case <-tick.C:
			_, lost := rec.ring.Drain(rec.sink)
			rec.lost += lost
		}
	}
}

// stop performs the final drain and reports how many events the recorder
// lost to ring overwrites over the whole run (0 unless the consumer fell a
// full ring behind the scheduler).
func (rec *recorder) stop() uint64 {
	close(rec.quit)
	<-rec.done
	return rec.lost
}

// serveDebug exposes live telemetry over HTTP: the counter snapshot as JSON
// (expvar-style), the latency histograms as JSON, and both in Prometheus
// text exposition on /metrics. The sinks are internally locked, so request
// handlers are safe against the recorder goroutine's concurrent folding.
// The returned function shuts the server down: it closes the listener and
// waits for in-flight scrapes to drain.
func serveDebug(addr string, counters *obs.Counters, hists *obs.Histograms) (func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/schedvars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(counters.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/schedhist", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteSchedHist(w, hists); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := counters.Snapshot()
		if err := obs.WritePrometheus(w, &snap, hists); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Shutdown
	fmt.Printf("telemetry endpoints: http://%s/metrics /debug/schedvars /debug/schedhist\n", ln.Addr())
	return func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}, nil
}

// liveWorkload downsizes the Table I mix (task counts divided by ~6) so a
// live run completes in seconds at sub-millisecond time scales.
func liveWorkload(jobs int, seed int64) ([]job.Spec, error) {
	types := workload.TableI()
	for i := range types {
		types[i].Maps = max(2, types[i].Maps/6)
		types[i].Reduces = max(1, types[i].Reduces/6)
		types[i].MapMean /= 2
		types[i].ReduceMean /= 2
		// Rescale the per-type counts to the requested total.
		types[i].Count = max(1, types[i].Count*jobs/100)
	}
	wcfg := workload.Config{MeanInterval: 1, DurationSigma: 0.4, Seed: seed}
	specs, err := workload.GenerateMix(types, wcfg)
	if err != nil {
		return nil, err
	}
	// Arrivals are driven live by the caller; clear the generated ones.
	for i := range specs {
		specs[i].Arrival = 0
	}
	return specs, nil
}
