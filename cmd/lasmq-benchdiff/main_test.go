package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
BenchmarkScheduleRound/LASMQ-8   1000   12345 ns/op   0 B/op   0 allocs/op
BenchmarkScale100k-8   1   2000000 ns/op   500 B/op   7 allocs/op   1048576 peak-heap-bytes
PASS
`

func TestParseBenchExtraMetrics(t *testing.T) {
	parsed, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := parsed["Scale100k"]
	if !ok {
		t.Fatalf("Scale100k not parsed; got %v", parsed)
	}
	if got := m.Extra["peak-heap-bytes"]; got != 1048576 {
		t.Fatalf("peak-heap-bytes = %v, want 1048576", got)
	}
}

func TestCheckRegressionsGatesExtraMetrics(t *testing.T) {
	base := Metrics{NsPerOp: 100, Extra: map[string]float64{"peak-heap-bytes": 1000}}
	f := &File{
		Baseline: map[string]Metrics{"Scale100k": base},
		Current: map[string]Metrics{
			"Scale100k": {NsPerOp: 100, Extra: map[string]float64{"peak-heap-bytes": 1500}},
		},
	}
	var out strings.Builder
	err := checkRegressions(&out, f, 0.20)
	if err == nil {
		t.Fatalf("a 50%% peak-heap-bytes regression passed the 20%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "peak-heap-bytes") {
		t.Fatalf("offending metric missing from the report:\n%s", out.String())
	}

	// Within the allowance the gate stays quiet.
	f.Current["Scale100k"] = Metrics{NsPerOp: 100, Extra: map[string]float64{"peak-heap-bytes": 1100}}
	if err := checkRegressions(&out, f, 0.20); err != nil {
		t.Fatalf("a 10%% change failed the 20%% gate: %v", err)
	}
}

func TestPrintTableKeepsFractionalWallClock(t *testing.T) {
	f := &File{
		Baseline: map[string]Metrics{
			"Scale10MEngineSharded": {NsPerOp: 4e9, Extra: map[string]float64{"wall_clock_s": 4.217}},
		},
		Current: map[string]Metrics{
			"Scale10MEngineSharded": {NsPerOp: 2e9, Extra: map[string]float64{"wall_clock_s": 2.108}},
		},
	}
	f.Speedup = speedups(f.Baseline, f.Current)
	var out strings.Builder
	printTable(&out, f)
	// Sub-second wall-clock values must keep their decimals; the integer
	// formatting used for ns/op and byte counts would render both as "4"/"2"
	// and make the table useless for fast tiers.
	if !strings.Contains(out.String(), "4.217") || !strings.Contains(out.String(), "2.108") {
		t.Fatalf("fractional wall_clock_s lost its precision:\n%s", out.String())
	}
}

func TestFmtNum(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{1048576, "1048576"},  // byte counts print whole
		{2.5e9, "2500000000"}, // large ns/op values print whole
		{4.217, "4.217"},      // small fractional metrics keep 3 decimals
		{0.031, "0.031"},      // fast-tier wall clock survives
		{7, "7"},              // integral small values stay bare
		{1234.56, "1235"},     // >= 1000 rounds to whole
	}
	for _, c := range cases {
		if got := fmtNum(c.v); got != c.want {
			t.Errorf("fmtNum(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestPrintTableShowsExtraMetrics(t *testing.T) {
	f := &File{
		Baseline: map[string]Metrics{
			"Scale100k": {NsPerOp: 100, Extra: map[string]float64{"peak-heap-bytes": 1000}},
		},
		Current: map[string]Metrics{
			"Scale100k": {NsPerOp: 90, Extra: map[string]float64{"peak-heap-bytes": 900}},
		},
	}
	f.Speedup = speedups(f.Baseline, f.Current)
	var out strings.Builder
	printTable(&out, f)
	if !strings.Contains(out.String(), "peak-heap-bytes") {
		t.Fatalf("extra metric missing from the table:\n%s", out.String())
	}
}
