package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
BenchmarkScheduleRound/LASMQ-8   1000   12345 ns/op   0 B/op   0 allocs/op
BenchmarkScale100k-8   1   2000000 ns/op   500 B/op   7 allocs/op   1048576 peak-heap-bytes
PASS
`

func TestParseBenchExtraMetrics(t *testing.T) {
	parsed, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := parsed["Scale100k"]
	if !ok {
		t.Fatalf("Scale100k not parsed; got %v", parsed)
	}
	if got := m.Extra["peak-heap-bytes"]; got != 1048576 {
		t.Fatalf("peak-heap-bytes = %v, want 1048576", got)
	}
}

func TestCheckRegressionsGatesExtraMetrics(t *testing.T) {
	base := Metrics{NsPerOp: 100, Extra: map[string]float64{"peak-heap-bytes": 1000}}
	f := &File{
		Baseline: map[string]Metrics{"Scale100k": base},
		Current: map[string]Metrics{
			"Scale100k": {NsPerOp: 100, Extra: map[string]float64{"peak-heap-bytes": 1500}},
		},
	}
	var out strings.Builder
	err := checkRegressions(&out, f, 0.20)
	if err == nil {
		t.Fatalf("a 50%% peak-heap-bytes regression passed the 20%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "peak-heap-bytes") {
		t.Fatalf("offending metric missing from the report:\n%s", out.String())
	}

	// Within the allowance the gate stays quiet.
	f.Current["Scale100k"] = Metrics{NsPerOp: 100, Extra: map[string]float64{"peak-heap-bytes": 1100}}
	if err := checkRegressions(&out, f, 0.20); err != nil {
		t.Fatalf("a 10%% change failed the 20%% gate: %v", err)
	}
}

func TestPrintTableShowsExtraMetrics(t *testing.T) {
	f := &File{
		Baseline: map[string]Metrics{
			"Scale100k": {NsPerOp: 100, Extra: map[string]float64{"peak-heap-bytes": 1000}},
		},
		Current: map[string]Metrics{
			"Scale100k": {NsPerOp: 90, Extra: map[string]float64{"peak-heap-bytes": 900}},
		},
	}
	f.Speedup = speedups(f.Baseline, f.Current)
	var out strings.Builder
	printTable(&out, f)
	if !strings.Contains(out.String(), "peak-heap-bytes") {
		t.Fatalf("extra metric missing from the table:\n%s", out.String())
	}
}
