// Command lasmq-benchdiff turns `go test -bench` output into the committed
// BENCH_engine.json performance record. It backs the `make bench-baseline` /
// `make bench-compare` flow:
//
//	go test -bench ... | lasmq-benchdiff -mode baseline -out BENCH_engine.json
//	go test -bench ... | lasmq-benchdiff -mode compare  -out BENCH_engine.json
//
// Baseline mode records ns/op, B/op, allocs/op and any custom b.ReportMetric
// units (e.g. BenchmarkScale100k's peak-heap-bytes) per benchmark. Compare
// mode re-reads the recorded baseline, adds the current numbers plus speedup
// ratios (baseline/current, so > 1 means faster / fewer allocations), writes
// the merged file back, and prints a comparison table. Compare mode is also
// the CI regression gate: it exits nonzero, after printing the offending
// rows, when any benchmark's ns/op, allocs/op or custom metric (any unit
// recorded in both sections, e.g. peak-heap-bytes) regressed by more than
// -max-regress (default 20%) against the baseline. Benchmarks with no
// recorded baseline are reported but never gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics holds one benchmark's standard measurements plus any custom
// b.ReportMetric units (keyed by unit, e.g. "peak-heap-bytes").
type Metrics struct {
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_op"`
	BytesPerOp  float64            `json:"b_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// File is the schema of BENCH_engine.json.
type File struct {
	Note     string             `json:"note"`
	Baseline map[string]Metrics `json:"baseline,omitempty"`
	Current  map[string]Metrics `json:"current,omitempty"`
	// Speedup maps benchmark -> ratio of baseline over current: ns_op > 1
	// means the current code is faster, allocs_op > 1 means it allocates
	// less.
	Speedup map[string]map[string]float64 `json:"speedup,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lasmq-benchdiff:", err)
		os.Exit(1)
	}
}

func run() error {
	mode := flag.String("mode", "compare", "baseline (record) or compare (diff against the recorded baseline)")
	out := flag.String("out", "BENCH_engine.json", "performance record to write")
	maxRegress := flag.Float64("max-regress", 0.20, "compare mode fails when ns/op, allocs/op or a custom metric regressed by more than this fraction")
	flag.Parse()

	parsed, err := parseBench(os.Stdin)
	if err != nil {
		return err
	}
	if len(parsed) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin (run with `go test -bench ... | lasmq-benchdiff`)")
	}

	switch *mode {
	case "baseline":
		f := &File{
			Note:     "Engine performance record: `make bench-baseline` writes the baseline section, `make bench-compare` adds current numbers and baseline/current speedup ratios (> 1 is an improvement).",
			Baseline: parsed,
		}
		if err := writeFile(*out, f); err != nil {
			return err
		}
		fmt.Printf("recorded baseline for %d benchmark(s) in %s\n", len(parsed), *out)
		return nil
	case "compare":
		f, err := readFile(*out)
		if err != nil {
			return fmt.Errorf("reading baseline (run `make bench-baseline` first): %w", err)
		}
		if len(f.Baseline) == 0 {
			return fmt.Errorf("%s has no baseline section (run `make bench-baseline` first)", *out)
		}
		f.Current = parsed
		f.Speedup = speedups(f.Baseline, parsed)
		if err := writeFile(*out, f); err != nil {
			return err
		}
		printTable(os.Stdout, f)
		return checkRegressions(os.Stdout, f, *maxRegress)
	default:
		return fmt.Errorf("unknown mode %q (want baseline or compare)", *mode)
	}
}

// parseBench extracts benchmark result lines from `go test -bench` output.
// A result line looks like:
//
//	BenchmarkFig7Heavy-8  3  189104999 ns/op  141269792 B/op  886112 allocs/op
//
// The Benchmark prefix and -GOMAXPROCS suffix are stripped from the name;
// sub-benchmarks keep their /sub path. ns/op, B/op and allocs/op land in the
// named fields; any other unit (custom b.ReportMetric output) is recorded
// under Extra keyed by its unit string.
func parseBench(r io.Reader) (map[string]Metrics, error) {
	res := make(map[string]Metrics)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // e.g. "Benchmark... skipped" or a status line
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := Metrics{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				m.NsPerOp = v
			case "B/op":
				m.BytesPerOp = v
			case "allocs/op":
				m.AllocsPerOp = v
			default: // custom b.ReportMetric units, e.g. peak-heap-bytes
				if m.Extra == nil {
					m.Extra = make(map[string]float64)
				}
				m.Extra[unit] = v
			}
		}
		if m.NsPerOp > 0 {
			res[name] = m
		}
	}
	return res, sc.Err()
}

// speedups computes baseline/current ratios for benchmarks present in both
// sections.
func speedups(baseline, current map[string]Metrics) map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	for name, b := range baseline {
		c, ok := current[name]
		if !ok {
			continue
		}
		ratios := make(map[string]float64)
		if b.NsPerOp > 0 && c.NsPerOp > 0 {
			ratios["ns_op"] = round3(b.NsPerOp / c.NsPerOp)
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp > 0 {
			ratios["allocs_op"] = round3(b.AllocsPerOp / c.AllocsPerOp)
		}
		if b.BytesPerOp > 0 && c.BytesPerOp > 0 {
			ratios["b_op"] = round3(b.BytesPerOp / c.BytesPerOp)
		}
		for unit, bv := range b.Extra {
			if cv := c.Extra[unit]; bv > 0 && cv > 0 {
				ratios[unit] = round3(bv / cv)
			}
		}
		out[name] = ratios
	}
	return out
}

func round3(x float64) float64 {
	s, _ := strconv.ParseFloat(strconv.FormatFloat(x, 'f', 3, 64), 64)
	return s
}

func printTable(w io.Writer, f *File) {
	names := make([]string, 0, len(f.Speedup))
	for name := range f.Speedup {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-28s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "base ns/op", "cur ns/op", "speedup", "base allocs", "cur allocs", "ratio")
	for _, name := range names {
		b, c := f.Baseline[name], f.Current[name]
		s := f.Speedup[name]
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %7.2fx %12.0f %12.0f %7.2fx\n",
			name, b.NsPerOp, c.NsPerOp, s["ns_op"], b.AllocsPerOp, c.AllocsPerOp, s["allocs_op"])
		// Custom b.ReportMetric units (e.g. peak-heap-bytes, wall_clock_s)
		// as sub-rows; fmtNum keeps fractional units like wall_clock_s
		// readable instead of truncating them to integers.
		for _, unit := range extraUnits(b, c) {
			fmt.Fprintf(w, "%-28s %14s %14s %7.2fx\n",
				"  "+unit, fmtNum(b.Extra[unit]), fmtNum(c.Extra[unit]), s[unit])
		}
	}
	for name := range f.Current {
		if _, ok := f.Baseline[name]; !ok {
			fmt.Fprintf(w, "%-28s (no baseline recorded)\n", name)
		}
	}
}

// checkRegressions is compare mode's gate: any benchmark present in both
// sections whose ns/op, allocs/op or custom metric grew by more than
// maxRegress (a fraction; 0.20 means 20%) fails the run. Offending rows print as a diff table so CI
// logs show what regressed and by how much. A negative maxRegress disables
// the gate.
func checkRegressions(w io.Writer, f *File, maxRegress float64) error {
	if maxRegress < 0 {
		return nil
	}
	type row struct {
		name, metric   string
		base, cur, pct float64
	}
	var rows []row
	names := make([]string, 0, len(f.Baseline))
	for name := range f.Baseline {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := f.Baseline[name]
		c, ok := f.Current[name]
		if !ok {
			continue
		}
		check := func(metric string, bv, cv float64) {
			if bv > 0 && cv > bv*(1+maxRegress) {
				rows = append(rows, row{name, metric, bv, cv, 100 * (cv - bv) / bv})
			}
		}
		check("ns/op", b.NsPerOp, c.NsPerOp)
		check("allocs/op", b.AllocsPerOp, c.AllocsPerOp)
		for _, unit := range extraUnits(b, c) {
			check(unit, b.Extra[unit], c.Extra[unit])
		}
	}
	if len(rows) == 0 {
		return nil
	}
	fmt.Fprintf(w, "\nREGRESSIONS (> %.0f%% over baseline):\n", 100*maxRegress)
	fmt.Fprintf(w, "%-28s %-10s %14s %14s %8s\n", "benchmark", "metric", "baseline", "current", "change")
	for _, r := range rows {
		fmt.Fprintf(w, "%-28s %-10s %14s %14s %+7.1f%%\n", r.name, r.metric, fmtNum(r.base), fmtNum(r.cur), r.pct)
	}
	return fmt.Errorf("%d metric(s) regressed by more than %.0f%% (re-baseline with `make bench-baseline` if intentional)",
		len(rows), 100*maxRegress)
}

// fmtNum renders a metric value at a precision fit for its magnitude:
// integral-scale values (bytes, counts, ns) print whole, small fractional
// values (wall_clock_s on a fast tier, normalized ratios) keep three
// decimals instead of truncating to 0.
func fmtNum(v float64) string {
	if v >= 1000 || v == float64(int64(v)) {
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
	return strconv.FormatFloat(v, 'f', 3, 64)
}

// extraUnits returns the custom-metric units present in both baseline and
// current, sorted for stable table and gate order.
func extraUnits(b, c Metrics) []string {
	var units []string
	for unit := range b.Extra {
		if _, ok := c.Extra[unit]; ok {
			units = append(units, unit)
		}
	}
	sort.Strings(units)
	return units
}

func readFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func writeFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
