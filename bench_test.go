// Benchmarks regenerating every table and figure of the paper's evaluation
// (run with `go test -bench=. -benchmem`). Each figure bench executes the
// corresponding experiment and reports the paper's headline numbers as
// custom metrics (normalized average job response time versus Fair, denoted
// normX), so the series the paper plots appear directly in the benchmark
// output. Full paper-scale runs are available via cmd/lasmq-bench; the
// heaviest traces are scaled down here to keep `go test -bench` interactive,
// without changing who wins or by roughly what factor.
//
// Ablation benches beyond the paper cover the design choices DESIGN.md calls
// out: cross-queue weights, stage awareness, in-queue ordering, speculative
// execution, and SJF's sensitivity to size-estimate error.
package lasmq_test

import (
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"lasmq"
	"lasmq/internal/core"
	"lasmq/internal/engine"
	"lasmq/internal/experiments"
	"lasmq/internal/fluid"
	"lasmq/internal/geo"
	"lasmq/internal/mapreduce"
	"lasmq/internal/sched"
	"lasmq/internal/sched/schedtest"
	"lasmq/internal/stats"
	"lasmq/internal/trace"
	"lasmq/internal/workload"
)

// benchOpts is the reduced-but-faithful scale used by the figure benches.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 1, Repeats: 1, TraceJobs: 6000, UniformJobs: 1500}
}

// BenchmarkFig1Motivation regenerates Fig. 1: LAS vs. a 2-level queue on
// jobs A, B, C (sizes 4, 4, 1). Reported metrics are job A's response time
// under each policy (paper: 9 vs. 6).
func BenchmarkFig1Motivation(b *testing.B) {
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.LAS["A"], "respA_LAS")
	b.ReportMetric(last.LASMQ["A"], "respA_MQ")
}

// BenchmarkFig3Ablation regenerates Fig. 3: the four design-option cases,
// normalized over Fair (50-second interval).
func BenchmarkFig3Ablation(b *testing.B) {
	var last *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Cases[0], "case1")
	b.ReportMetric(last.Cases[1], "case2")
	b.ReportMetric(last.Cases[2], "case3")
	b.ReportMetric(last.Cases[3], "case4")
}

func benchCluster(b *testing.B, run func(experiments.Options) (*experiments.ClusterResult, error)) {
	b.Helper()
	var last *experiments.ClusterResult
	for i := 0; i < b.N; i++ {
		res, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, name := range experiments.PolicyOrder {
		b.ReportMetric(last.Normalized[name], "norm"+name)
	}
}

// BenchmarkFig5Cluster regenerates Fig. 5: the Table I workload at the
// 80-second mean arrival interval (paper: LAS_MQ cuts Fair's mean response
// by ~40%, FIFO worst).
func BenchmarkFig5Cluster(b *testing.B) { benchCluster(b, experiments.Fig5) }

// BenchmarkFig6Cluster regenerates Fig. 6: the 50-second interval (higher
// load; paper: ~45% reduction, gaps widen).
func BenchmarkFig6Cluster(b *testing.B) { benchCluster(b, experiments.Fig6) }

func benchTrace(b *testing.B, run func(experiments.Options) (*experiments.TraceResult, error)) {
	b.Helper()
	var last *experiments.TraceResult
	for i := 0; i < b.N; i++ {
		res, err := run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, name := range experiments.PolicyOrder {
		b.ReportMetric(last.Normalized[name], "norm"+name)
	}
}

// BenchmarkFig7Heavy regenerates Fig. 7a: the heavy-tailed Facebook-like
// trace (paper: LAS 17.4 < LAS_MQ 19.4 < FAIR 27.7 << FIFO 1933.9).
func BenchmarkFig7Heavy(b *testing.B) { benchTrace(b, experiments.Fig7HeavyTailed) }

// BenchmarkFig7Uniform regenerates Fig. 7b: 10,000 identical jobs (paper:
// LAS_MQ ~ FIFO ~ 5e7, FAIR ~ LAS ~ 1e8; scaled down here).
func BenchmarkFig7Uniform(b *testing.B) { benchTrace(b, experiments.Fig7Uniform) }

// scaleEnvInt applies an optional positive-int env override to a scale knob.
func scaleEnvInt(b *testing.B, key string, set func(int)) {
	b.Helper()
	env := os.Getenv(key)
	if env == "" {
		return
	}
	n, err := strconv.Atoi(env)
	if err != nil || n <= 0 {
		b.Fatalf("bad %s %q", key, env)
	}
	set(n)
}

// benchScaleTier runs one scale-tier experiment per iteration while a
// background sampler reads the heap every 5ms, then reports the high-water
// mark as peak-heap-bytes and the per-run wall time as wall_clock_s
// alongside the usual normalized-response metrics — the numbers
// BENCH_engine.json tracks for the scale tiers. wall_clock_s duplicates
// ns/op in different units so cmd/lasmq-benchdiff can show scale-out wins in
// human-readable seconds and gate on them like any other extra metric.
func benchScaleTier(b *testing.B, opts experiments.Options, run func(experiments.Options) (*experiments.TraceResult, error)) {
	b.Helper()
	var peak uint64
	var elapsed time.Duration
	var last *experiments.TraceResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stop := make(chan struct{})
		sampled := make(chan uint64, 1)
		go func() {
			var high uint64
			var ms runtime.MemStats
			for {
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > high {
					high = ms.HeapAlloc
				}
				select {
				case <-stop:
					sampled <- high
					return
				case <-time.After(5 * time.Millisecond):
				}
			}
		}()
		start := time.Now()
		res, err := run(opts)
		elapsed += time.Since(start)
		close(stop)
		if high := <-sampled; high > peak {
			peak = high
		}
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(peak), "peak-heap-bytes")
	b.ReportMetric(elapsed.Seconds()/float64(b.N), "wall_clock_s")
	for _, name := range experiments.PolicyOrder {
		b.ReportMetric(last.Normalized[name], "norm"+name)
	}
}

// BenchmarkScale100k runs the scale tier: the heavy-tailed trace at 100,000
// jobs (~4x the paper's) under all four policies. Beyond ns/op and allocs, it
// samples the heap during the run and reports the high-water mark as
// peak-heap-bytes, so BENCH_engine.json tracks the memory envelope of the
// ladder event queue and slab state at scale. LASMQ_SCALE_JOBS overrides the
// trace length (the race-enabled `make bench-smoke` uses a small value).
func BenchmarkScale100k(b *testing.B) {
	opts := experiments.Options{Seed: 1, Repeats: 1}
	scaleEnvInt(b, "LASMQ_SCALE_JOBS", func(n int) { opts.ScaleJobs = n })
	benchScaleTier(b, opts, experiments.Scale100k)
}

// BenchmarkScale1M runs the millions-of-jobs tier: the heavy-tailed trace
// streamed at 1,000,000 jobs over 8 independent 20-container shards (load
// 0.9 each) under all four policies. The trace is never materialized and
// completed job records are recycled through a free list, so peak-heap-bytes
// tracks live jobs, not trace length. LASMQ_SCALE1M_JOBS and
// LASMQ_SCALE1M_SHARDS override the scale (the race-enabled
// `make bench-smoke` runs a small K=4 configuration).
func BenchmarkScale1M(b *testing.B) {
	opts := experiments.Options{Seed: 1, Repeats: 1}
	scaleEnvInt(b, "LASMQ_SCALE1M_JOBS", func(n int) { opts.Scale1MJobs = n })
	scaleEnvInt(b, "LASMQ_SCALE1M_SHARDS", func(n int) { opts.Shards = n })
	benchScaleTier(b, opts, experiments.Scale1M)
}

// BenchmarkScale10M runs the ten-million-job tier: scale-1m's sharded
// streaming machinery with the trace length turned up 10x. Because the trace
// is generated on the fly and completed job records recycle through the free
// list, peak-heap-bytes should stay in scale-1m's neighbourhood even though
// the stream is an order of magnitude longer — the streaming contract this
// benchmark pins in BENCH_engine.json. LASMQ_SCALE10M_JOBS and
// LASMQ_SCALE10M_SHARDS override the scale (the race-enabled
// `make bench-smoke` runs a small configuration).
func BenchmarkScale10M(b *testing.B) {
	opts := experiments.Options{Seed: 1, Repeats: 1}
	scaleEnvInt(b, "LASMQ_SCALE10M_JOBS", func(n int) { opts.Scale10MJobs = n })
	scaleEnvInt(b, "LASMQ_SCALE10M_SHARDS", func(n int) { opts.Shards = n })
	benchScaleTier(b, opts, experiments.Scale10M)
}

// BenchmarkScale1MEngineSharded runs scale-1m on the task-level engine: the
// streamed trace staged into map→reduce jobs on the fly and simulated task
// by task — chaos failures, stragglers and speculation on — across 8
// independent 20-container sub-clusters via engine.RunSharded.
// LASMQ_SCALE1M_ENGINE_JOBS, LASMQ_SCALE1M_ENGINE_SHARDS and
// LASMQ_SCALE1M_ENGINE_WORKERS override the scale (the race-enabled
// `make bench-smoke` runs a small K=4 configuration with a real worker pool).
func BenchmarkScale1MEngineSharded(b *testing.B) {
	opts := experiments.Options{Seed: 1, Repeats: 1}
	scaleEnvInt(b, "LASMQ_SCALE1M_ENGINE_JOBS", func(n int) { opts.Scale1MJobs = n })
	scaleEnvInt(b, "LASMQ_SCALE1M_ENGINE_SHARDS", func(n int) { opts.Shards = n })
	scaleEnvInt(b, "LASMQ_SCALE1M_ENGINE_WORKERS", func(n int) { opts.ShardWorkers = n })
	benchScaleTier(b, opts, experiments.Scale1MEngine)
}

// BenchmarkScale10MEngineSharded is the flagship engine scale-out tier: ten
// million streamed jobs staged and simulated task by task across 8 sharded
// sub-clusters (engine.RunSharded), with per-shard-deterministic chaos. On a
// multi-core runner, wall_clock_s drops roughly with the worker count
// (Workers is execution-only: results are DeepEqual for any value);
// peak-heap-bytes stays bounded by live jobs, not trace length.
// LASMQ_SCALE10M_ENGINE_JOBS, LASMQ_SCALE10M_ENGINE_SHARDS and
// LASMQ_SCALE10M_ENGINE_WORKERS override the scale.
func BenchmarkScale10MEngineSharded(b *testing.B) {
	opts := experiments.Options{Seed: 1, Repeats: 1}
	scaleEnvInt(b, "LASMQ_SCALE10M_ENGINE_JOBS", func(n int) { opts.Scale10MJobs = n })
	scaleEnvInt(b, "LASMQ_SCALE10M_ENGINE_SHARDS", func(n int) { opts.Shards = n })
	scaleEnvInt(b, "LASMQ_SCALE10M_ENGINE_WORKERS", func(n int) { opts.ShardWorkers = n })
	benchScaleTier(b, opts, experiments.Scale10MEngine)
}

// BenchmarkFig8Queues regenerates Fig. 8a: the number-of-queues sweep
// (paper: beats Fair from k = 5 on).
func BenchmarkFig8Queues(b *testing.B) {
	var last *experiments.Fig8QueuesResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8Queues(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, k := range []int{1, 2, 4, 5, 10} {
		b.ReportMetric(last.Normalized[k], "k"+itoa(k))
	}
}

// BenchmarkFig8Thresholds regenerates Fig. 8b: the first-threshold sweep.
func BenchmarkFig8Thresholds(b *testing.B) {
	var last *experiments.Fig8ThresholdsResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8Thresholds(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Normalized[0.001], "alpha0.001")
	b.ReportMetric(last.Normalized[1], "alpha1")
	b.ReportMetric(last.Normalized[10], "alpha10")
}

// BenchmarkTableIWorkload regenerates Table I's workload (the generator
// itself): 100 jobs, ~25k tasks.
func BenchmarkTableIWorkload(b *testing.B) {
	cfg := workload.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := workload.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationQueueWeights sweeps the cross-queue weight decay — the
// parameter the paper leaves unspecified (DESIGN.md).
func BenchmarkAblationQueueWeights(b *testing.B) {
	var last map[float64]float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationWeights(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last[1], "decay1")
	b.ReportMetric(last[2], "decay2")
	b.ReportMetric(last[8], "decay8")
}

// BenchmarkAblationStageAwareness isolates stage awareness (Fig. 3 cases
// 3 vs. 4) at the higher load.
func BenchmarkAblationStageAwareness(b *testing.B) {
	benchLASMQVariant(b, func(on bool, c *core.Config) { c.StageAware = on })
}

// BenchmarkAblationOrdering isolates in-queue ordering (Fig. 3 cases
// 2 vs. 4).
func BenchmarkAblationOrdering(b *testing.B) {
	benchLASMQVariant(b, func(on bool, c *core.Config) { c.OrderByDemand = on })
}

func benchLASMQVariant(b *testing.B, set func(on bool, c *core.Config)) {
	b.Helper()
	wcfg := workload.DefaultConfig()
	wcfg.MeanInterval = 50
	wcfg.Seed = 1
	specs, err := workload.Generate(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	var off, on float64
	for i := 0; i < b.N; i++ {
		for _, enabled := range []bool{false, true} {
			cfg := core.DefaultConfig()
			set(enabled, &cfg)
			mq, err := core.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := engine.Run(specs, mq, engine.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			if enabled {
				on = res.MeanResponseTime()
			} else {
				off = res.MeanResponseTime()
			}
		}
	}
	b.ReportMetric(off, "meanRespOff")
	b.ReportMetric(on, "meanRespOn")
}

// BenchmarkMotivationSJFError regenerates the introduction's argument: SJF
// degrades with size-estimate error while LAS_MQ needs none.
func BenchmarkMotivationSJFError(b *testing.B) {
	var last *experiments.SJFErrorResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.MotivationSJFError(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Oracle, "sjfOracle")
	b.ReportMetric(last.SJF[10], "sjfErrX10")
	b.ReportMetric(last.SJF[100], "sjfErrX100")
	b.ReportMetric(last.LASMQ, "lasmq")
}

// BenchmarkSpeculation measures speculative execution against stragglers
// (the paper's work-conservation remark).
func BenchmarkSpeculation(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.Seed = 1
	specs, err := workload.Generate(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	var with, without float64
	for i := 0; i < b.N; i++ {
		for _, speculate := range []bool{false, true} {
			cfg := engine.DefaultConfig()
			cfg.StragglerProb = 0.05
			cfg.StragglerFactor = 8
			cfg.Speculation = speculate
			cfg.Seed = 1
			mq, err := core.New(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			res, err := engine.Run(specs, mq, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if speculate {
				with = res.MeanResponseTime()
			} else {
				without = res.MeanResponseTime()
			}
		}
	}
	b.ReportMetric(without, "meanRespNoSpec")
	b.ReportMetric(with, "meanRespSpec")
}

// BenchmarkAdaptiveThresholds compares the fixed ladder, a misconfigured
// fixed ladder, and the adaptive variant (the paper's future-work item 1) on
// the heavy-tailed trace.
func BenchmarkAdaptiveThresholds(b *testing.B) {
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = 6000
	tcfg.Seed = 1
	specs, err := trace.Facebook(tcfg)
	if err != nil {
		b.Fatal(err)
	}
	fcfg := fluid.DefaultConfig()
	fcfg.Capacity = tcfg.Capacity

	run := func(policy sched.Scheduler) float64 {
		res, err := fluid.Run(specs, policy, fcfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.MeanResponseTime()
	}
	var good, bad, adaptive float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.FirstThreshold = 1
		cfg.StageAware = false
		cfg.OrderByDemand = false
		mq, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		good = run(mq)

		cfg.FirstThreshold = 1e-6
		cfg.Step = 2
		mis, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		bad = run(mis)

		acfg := core.DefaultAdaptiveConfig()
		acfg.StageAware = false
		acfg.OrderByDemand = false
		acfg.InitialThreshold = 1e-6
		acfg.InitialStep = 2
		ad, err := core.NewAdaptive(acfg)
		if err != nil {
			b.Fatal(err)
		}
		adaptive = run(ad)
	}
	b.ReportMetric(good, "meanRespTuned")
	b.ReportMetric(bad, "meanRespMistuned")
	b.ReportMetric(adaptive, "meanRespAdaptive")
}

// BenchmarkFairnessTradeoff sweeps the blend parameter theta between LAS_MQ
// (theta = 0) and Fair (theta = 1) on the Table I workload, reporting mean
// response and p99 slowdown-proxy (p99 response) at each point — the
// paper's future-work item 2.
func BenchmarkFairnessTradeoff(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.MeanInterval = 50
	wcfg.Seed = 1
	specs, err := workload.Generate(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	type point struct{ mean, p99 float64 }
	var results map[float64]point
	thetas := []float64{0, 0.25, 0.5, 1}
	for i := 0; i < b.N; i++ {
		results = make(map[float64]point, len(thetas))
		for _, theta := range thetas {
			mq, err := core.New(core.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			blend, err := sched.NewBlend(mq, sched.NewFair(), theta)
			if err != nil {
				b.Fatal(err)
			}
			res, err := engine.Run(specs, blend, engine.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			results[theta] = point{
				mean: res.MeanResponseTime(),
				p99:  stats.Percentile(res.ResponseTimes(), 0.99),
			}
		}
	}
	b.ReportMetric(results[0].mean, "meanTheta0")
	b.ReportMetric(results[0.5].mean, "meanTheta0.5")
	b.ReportMetric(results[1].mean, "meanTheta1")
	b.ReportMetric(results[0].p99, "p99Theta0")
	b.ReportMetric(results[0.5].p99, "p99Theta0.5")
	b.ReportMetric(results[1].p99, "p99Theta1")
}

// BenchmarkGeoScheduling measures the geo-distributed extension (the paper's
// future-work item 3): mean response under FIFO/Fair/LAS_MQ with
// locality-aware placement, plus Fair with blind placement, on a 3-site
// deployment with slow variable WAN links.
func BenchmarkGeoScheduling(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	var specs []geo.JobSpec
	arrival := 0.0
	for i := 1; i <= 30; i++ {
		arrival += r.ExpFloat64() * 8
		n, compute := 12, 3.0
		if i%5 == 0 {
			n, compute = 400, 5.0
		}
		tasks := make([]geo.TaskSpec, n)
		for t := range tasks {
			tasks[t] = geo.TaskSpec{Compute: compute, DataSite: t % 3, DataSize: 2}
		}
		specs = append(specs, geo.JobSpec{ID: i, Arrival: arrival, Priority: 1, Tasks: tasks})
	}
	cfg := geo.DefaultConfig()
	cfg.SiteContainers = []int{6, 6, 6}

	var fair, fifo, mqMean, blind float64
	for i := 0; i < b.N; i++ {
		run := func(p sched.Scheduler, placement geo.PlacementPolicy) float64 {
			c := cfg
			c.Placement = placement
			res, err := geo.Run(specs, p, c)
			if err != nil {
				b.Fatal(err)
			}
			return res.MeanResponseTime()
		}
		fair = run(sched.NewFair(), geo.PlaceLocalityAware)
		fifo = run(sched.NewFIFO(), geo.PlaceLocalityAware)
		mqCfg := core.DefaultConfig()
		mqCfg.FirstThreshold = 10
		mq, err := core.New(mqCfg)
		if err != nil {
			b.Fatal(err)
		}
		mqMean = run(mq, geo.PlaceLocalityAware)
		blind = run(sched.NewFair(), geo.PlaceBlind)
	}
	b.ReportMetric(mqMean, "meanLASMQ")
	b.ReportMetric(fair, "meanFAIR")
	b.ReportMetric(fifo, "meanFIFO")
	b.ReportMetric(blind, "meanFairBlind")
}

// --- Micro-benchmarks of the hot paths ---

func fakeJobs(n int) []sched.JobView {
	jobs := make([]sched.JobView, n)
	for i := range jobs {
		jobs[i] = &schedtest.FakeJob{
			JobID:        i + 1,
			JobSeq:       i + 1,
			JobPriority:  i%5 + 1,
			AttainedVal:  float64(i * 37 % 1000),
			EstimatedVal: float64(i * 53 % 2000),
			ReadyVal:     float64(i%40 + 1),
			RemainingVal: float64(i%300 + 1),
		}
	}
	return jobs
}

// BenchmarkLASMQAssign measures one LAS_MQ scheduling round over 1,000 jobs.
func BenchmarkLASMQAssign(b *testing.B) {
	mq, err := core.New(core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	jobs := fakeJobs(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mq.Assign(float64(i), 120, jobs)
	}
}

// BenchmarkFairAssign measures one Fair water-filling round over 1,000 jobs.
func BenchmarkFairAssign(b *testing.B) {
	fair := sched.NewFair()
	jobs := fakeJobs(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fair.Assign(float64(i), 120, jobs)
	}
}

// BenchmarkLASAssign measures one LAS round over 1,000 jobs.
func BenchmarkLASAssign(b *testing.B) {
	las := sched.NewLAS()
	jobs := fakeJobs(1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		las.Assign(float64(i), 120, jobs)
	}
}

// BenchmarkClusterEngine measures a full 100-job cluster simulation
// (~25k task events) under LAS_MQ.
func BenchmarkClusterEngine(b *testing.B) {
	wcfg := workload.DefaultConfig()
	wcfg.Seed = 1
	specs, err := workload.Generate(wcfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mq, err := core.New(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := engine.Run(specs, mq, engine.DefaultConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFluidEngine measures a 6,000-job heavy-tailed fluid simulation
// under LAS_MQ.
func BenchmarkFluidEngine(b *testing.B) {
	tcfg := trace.DefaultFacebookConfig()
	tcfg.Jobs = 6000
	tcfg.Seed = 1
	specs, err := trace.Facebook(tcfg)
	if err != nil {
		b.Fatal(err)
	}
	fcfg := fluid.DefaultConfig()
	fcfg.Capacity = tcfg.Capacity
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		cfg.FirstThreshold = 1
		cfg.StageAware = false
		cfg.OrderByDemand = false
		mq, err := core.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fluid.Run(specs, mq, fcfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPIQuickstart exercises the façade end to end.
func BenchmarkPublicAPIQuickstart(b *testing.B) {
	specs, err := lasmq.GenerateWorkload(lasmq.DefaultWorkloadConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		mq, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lasmq.RunCluster(specs, mq, lasmq.DefaultClusterConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkMapReduceWordCount runs a real word-count MapReduce job (24
// splits x 1000 words) on the live mini-YARN cluster under LAS_MQ and
// reports wall time per complete job.
func BenchmarkMapReduceWordCount(b *testing.B) {
	splits := mapreduce.SynthesizeText(24, 1000, 60, 1)
	for i := 0; i < b.N; i++ {
		mq, err := core.New(core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		res, err := mapreduce.Run(mapreduce.DefaultClusterConfig(), mq, []mapreduce.Job{{
			ID: 1, Name: "wordcount", Priority: 1,
			Splits: splits, Reducers: 4,
			Map: mapreduce.WordCountMap, Reduce: mapreduce.WordCountReduce,
		}})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Outputs[1]) == 0 {
			b.Fatal("empty output")
		}
	}
}
