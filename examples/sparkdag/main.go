// Spark-style DAG jobs: the paper targets Hadoop *and* Spark, and Spark
// stages form a DAG over RDD lineage rather than a map→reduce chain. This
// example runs a SQL-ish query plan — scan fanning out to two independent
// branches that join at the end — and shows that LAS_MQ needs no changes:
// the stage-aware service estimate simply sums over the active branches.
//
// Run with:
//
//	go run ./examples/sparkdag
package main

import (
	"fmt"
	"log"

	"lasmq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A query-plan DAG:
	//
	//            ┌── filter(users) ──┐
	//   scan ────┤                   ├── join ── aggregate
	//            └── filter(events) ─┘
	query := lasmq.JobSpec{
		ID: 1, Name: "sql-query", Priority: 1,
		Stages: []lasmq.StageSpec{
			mkStage("scan", 16, 12, []int{}),
			mkStage("filter-users", 8, 20, []int{0}),
			mkStage("filter-events", 8, 6, []int{0}),
			mkStage("join", 6, 15, []int{1, 2}),
			mkStage("aggregate", 2, 8, []int{3}),
		},
	}
	// The same stages as a forced linear chain, for comparison.
	linear := query
	linear.ID = 2
	linear.Name = "sql-query-linear"
	linear.Stages = append([]lasmq.StageSpec(nil), query.Stages...)
	for i := range linear.Stages {
		linear.Stages[i].DependsOn = nil // default: depend on the previous stage
	}

	cfg := lasmq.DefaultClusterConfig()
	cfg.Containers = 32
	cfg.MaxRunningJobs = 0

	mq, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		return err
	}
	res, err := lasmq.RunCluster([]lasmq.JobSpec{query, linear}, mq, cfg)
	if err != nil {
		return err
	}
	fmt.Println("one cluster, two plans for the same stages:")
	for _, jr := range res.Jobs {
		fmt.Printf("  %-18s completed at %5.0f s (service %.0f container-seconds)\n",
			jr.Name, jr.Completed, jr.Service)
	}
	fmt.Println()
	fmt.Println("The DAG plan finishes earlier: filter-users and filter-events run")
	fmt.Println("concurrently, so the critical path skips the shorter branch entirely.")

	// And a DAG job competing with small jobs under LAS_MQ: the heavy DAG is
	// demoted across BOTH of its active branches at once.
	heavy := query
	heavy.ID = 3
	heavy.Name = "heavy-dag"
	small := lasmq.JobSpec{
		ID: 4, Name: "small-adhoc", Priority: 1, Arrival: 30,
		Stages: []lasmq.StageSpec{mkStage("probe", 4, 3, []int{})},
	}
	mq2, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		return err
	}
	res2, err := lasmq.RunCluster([]lasmq.JobSpec{heavy, small}, mq2, cfg)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("with a late small job: %s responds in %.0f s, %s in %.0f s\n",
		res2.Jobs[1].Name, res2.Jobs[1].ResponseTime,
		res2.Jobs[0].Name, res2.Jobs[0].ResponseTime)
	return nil
}

func mkStage(name string, tasks int, seconds float64, deps []int) lasmq.StageSpec {
	ts := make([]lasmq.TaskSpec, tasks)
	for i := range ts {
		ts[i] = lasmq.TaskSpec{Duration: seconds, Containers: 1}
	}
	return lasmq.StageSpec{Name: name, Tasks: ts, DependsOn: deps}
}
