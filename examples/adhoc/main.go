// Ad hoc analytics: the paper's motivating scenario. More than half of
// production jobs are ad hoc — run once, over new code or new data — so
// size-based schedulers must work from estimates, and estimates are wrong.
// This example submits the paper's Table I workload and compares SJF under
// increasingly bad size estimates against LAS_MQ, which needs none.
//
// Run with:
//
//	go run ./examples/adhoc
package main

import (
	"fmt"
	"log"

	"lasmq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cluster := lasmq.DefaultClusterConfig()

	// Oracle SJF: perfect size information (the recurring-jobs assumption).
	wcfg := lasmq.DefaultWorkloadConfig()
	wcfg.MeanInterval = 50
	wcfg.Seed = 7
	exact, err := lasmq.GenerateWorkload(wcfg)
	if err != nil {
		return err
	}
	oracle, err := lasmq.RunCluster(exact, lasmq.NewSJF(), cluster)
	if err != nil {
		return err
	}

	fmt.Println("mean job response time (seconds), 100 Table I jobs, 50 s arrivals:")
	fmt.Printf("  SJF with perfect sizes:     %8.0f\n", oracle.MeanResponseTime())

	// Ad hoc reality: size estimates off by up to the given factor either way.
	for _, errFactor := range []float64{2, 10, 100} {
		wcfg.SizeErrorFactor = errFactor
		specs, err := lasmq.GenerateWorkload(wcfg)
		if err != nil {
			return err
		}
		res, err := lasmq.RunCluster(specs, lasmq.NewSJF(), cluster)
		if err != nil {
			return err
		}
		fmt.Printf("  SJF, estimates off by x%-4g: %8.0f\n", errFactor, res.MeanResponseTime())
	}

	// LAS_MQ: no size information at all.
	mq, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		return err
	}
	mqRes, err := lasmq.RunCluster(exact, mq, cluster)
	if err != nil {
		return err
	}
	fmt.Printf("  LAS_MQ (no estimates):      %8.0f\n", mqRes.MeanResponseTime())

	fmt.Println()
	fmt.Println("LAS_MQ stays close to the oracle while SJF degrades as its size")
	fmt.Println("estimates degrade — the paper's case for size-oblivious scheduling.")
	return nil
}
