// WordCount for real: a miniature Hadoop. Map and reduce functions actually
// compute over synthesized text on the live mini-YARN cluster, while LAS_MQ
// schedules the jobs without being told anything about their sizes. A small
// interactive grep overtakes two heavy batch jobs exactly as the paper
// promises — and the word counts still come out right.
//
// Run with:
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"

	"lasmq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two heavy batch jobs and one tiny ad hoc query.
	bigText := lasmq.SynthesizeText(48, 3000, 80, 1)
	midText := lasmq.SynthesizeText(24, 2000, 60, 2)
	logLines := []string{
		"ts=1 level=info msg=ok\nts=2 level=ERROR msg=disk full",
		"ts=3 level=info msg=ok\nts=4 level=ERROR msg=timeout\nts=5 level=info",
	}

	jobs := []lasmq.MapReduceJob{
		{
			ID: 1, Name: "wordcount-large", Priority: 1,
			Splits: bigText, Reducers: 8,
			Map: lasmq.WordCountMap, Reduce: lasmq.WordCountReduce,
			MapSeconds: 40, ReduceSeconds: 40,
		},
		{
			ID: 2, Name: "wordcount-medium", Priority: 1,
			Splits: midText, Reducers: 4,
			Map: lasmq.WordCountMap, Reduce: lasmq.WordCountReduce,
			MapSeconds: 25, ReduceSeconds: 25,
		},
		{
			ID: 3, Name: "grep-errors", Priority: 1,
			Splits: logLines, Reducers: 1,
			Map: lasmq.GrepMap("ERROR"), Reduce: lasmq.CountReduce,
			MapSeconds: 2, ReduceSeconds: 2,
		},
	}

	scheduler, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		return err
	}
	res, err := lasmq.RunMapReduce(lasmq.DefaultMapReduceClusterConfig(), scheduler, jobs)
	if err != nil {
		return err
	}

	fmt.Println("job completions (LAS_MQ, no size information):")
	reports := res.Reports
	sort.Slice(reports, func(i, j int) bool { return reports[i].Completed.Before(reports[j].Completed) })
	for _, r := range reports {
		fmt.Printf("  %-18s finished (response %6.0f cluster-seconds)\n", r.Name, r.Response)
	}

	fmt.Printf("\ngrep found %s ERROR lines\n", res.Outputs[3]["ERROR"])

	// Show the heavy job's most common words — the output is real.
	counts := res.Outputs[1]
	type wc struct {
		word  string
		count int
	}
	var top []wc
	for w, c := range counts {
		n, err := strconv.Atoi(c)
		if err != nil {
			continue
		}
		top = append(top, wc{word: w, count: n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].count != top[j].count {
			return top[i].count > top[j].count
		}
		return top[i].word < top[j].word
	})
	fmt.Println("top words in the large corpus:")
	for _, t := range top[:5] {
		fmt.Printf("  %-6s %d\n", t.word, t.count)
	}
	return nil
}
