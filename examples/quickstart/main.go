// Quickstart: schedule a handful of jobs of very different sizes on a small
// simulated cluster and watch LAS_MQ separate them without being told any
// sizes — the paper's Fig. 1 idea at cluster scale.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lasmq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A mixed workload: two large jobs arrive first, then small ones trickle
	// in behind them. No scheduler is told any job sizes.
	specs := []lasmq.JobSpec{
		batchJob(1, "etl-large", 0, 400, 30),
		batchJob(2, "model-train", 10, 300, 40),
		batchJob(3, "dashboard-query", 60, 8, 5),
		batchJob(4, "alert-check", 90, 4, 5),
		batchJob(5, "sample-report", 120, 12, 6),
	}
	cfg := lasmq.DefaultClusterConfig()
	cfg.Containers = 40
	cfg.MaxRunningJobs = 0

	fmt.Println("job response times (seconds) on a 40-container cluster:")
	fmt.Printf("%-16s %10s %10s %10s\n", "job", "FIFO", "FAIR", "LAS_MQ")

	fifoRes, err := lasmq.RunCluster(specs, lasmq.NewFIFO(), cfg)
	if err != nil {
		return err
	}
	fairRes, err := lasmq.RunCluster(specs, lasmq.NewFair(), cfg)
	if err != nil {
		return err
	}
	mq, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		return err
	}
	mqRes, err := lasmq.RunCluster(specs, mq, cfg)
	if err != nil {
		return err
	}

	for i := range specs {
		fmt.Printf("%-16s %10.0f %10.0f %10.0f\n",
			specs[i].Name,
			fifoRes.Jobs[i].ResponseTime,
			fairRes.Jobs[i].ResponseTime,
			mqRes.Jobs[i].ResponseTime)
	}
	fmt.Printf("%-16s %10.0f %10.0f %10.0f\n", "mean",
		fifoRes.MeanResponseTime(), fairRes.MeanResponseTime(), mqRes.MeanResponseTime())

	fmt.Println()
	fmt.Println("LAS_MQ mimics shortest-job-first without size information: the small")
	fmt.Println("jobs overtake the two large ones once those are demoted to lower queues.")
	return nil
}

// batchJob builds a single-stage job of n map tasks with the given duration.
func batchJob(id int, name string, arrival float64, tasks int, taskSeconds float64) lasmq.JobSpec {
	ts := make([]lasmq.TaskSpec, tasks)
	for i := range ts {
		ts[i] = lasmq.TaskSpec{Duration: taskSeconds, Containers: 1}
	}
	return lasmq.JobSpec{
		ID:       id,
		Name:     name,
		Bin:      1,
		Priority: 1,
		Arrival:  arrival,
		Stages:   []lasmq.StageSpec{{Name: "map", Tasks: ts}},
	}
}
