// Trace replay: synthesize the heavy-tailed Facebook-like trace, persist it
// as CSV, replay it through the fluid simulator under all four policies, and
// report the paper's Fig. 7a comparison.
//
// Run with:
//
//	go run ./examples/tracereplay
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lasmq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Synthesize a (scaled-down) heavy-tailed trace and persist it.
	tcfg := lasmq.DefaultFacebookTraceConfig()
	tcfg.Jobs = 5000
	tcfg.Seed = 42
	specs, err := lasmq.FacebookTrace(tcfg)
	if err != nil {
		return err
	}

	path := filepath.Join(os.TempDir(), "lasmq-trace.csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := lasmq.WriteTraceCSV(f, specs); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d jobs to %s\n", len(specs), path)

	// Replay it: any CSV trace (including real ones) goes through the same
	// path.
	g, err := os.Open(path)
	if err != nil {
		return err
	}
	replayed, err := lasmq.ReadTraceCSV(g)
	g.Close()
	if err != nil {
		return err
	}

	fcfg := lasmq.DefaultFluidConfig()
	fcfg.Capacity = tcfg.Capacity

	fmt.Println("\nmean job response time on the replayed trace (load 0.9):")
	policies := []lasmq.Scheduler{lasmq.NewLAS(), lasmq.NewFair(), lasmq.NewFIFO()}
	mqCfg := lasmq.DefaultSchedulerConfig()
	mqCfg.FirstThreshold = 1 // the paper's trace-simulation threshold
	mqCfg.StageAware = false
	mqCfg.OrderByDemand = false
	mq, err := lasmq.NewScheduler(mqCfg)
	if err != nil {
		return err
	}
	policies = append([]lasmq.Scheduler{mq}, policies...)

	var fair float64
	results := make(map[string]float64, len(policies))
	for _, p := range policies {
		res, err := lasmq.RunTrace(replayed, p, fcfg)
		if err != nil {
			return err
		}
		results[res.Scheduler] = res.MeanResponseTime()
		if res.Scheduler == "FAIR" {
			fair = res.MeanResponseTime()
		}
	}
	for _, name := range []string{"LAS_MQ", "LAS", "FAIR", "FIFO"} {
		fmt.Printf("  %-7s %10.3f  (%.2fx vs FAIR)\n", name, results[name], fair/results[name])
	}
	fmt.Println("\nLAS and LAS_MQ separate the heavy tail; FIFO collapses behind it.")
	return nil
}
