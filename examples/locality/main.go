// Data locality: store a 10 GB input in the HDFS-like block store (128 MB
// blocks, replication 2, as on the paper's testbed), derive the job's map
// tasks from its splits — exactly how the paper's implementation counts map
// tasks — and watch the live cluster place maps next to their blocks.
//
// Run with:
//
//	go run ./examples/locality
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lasmq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	store, err := lasmq.NewDFS(lasmq.DefaultDFSConfig())
	if err != nil {
		return err
	}
	blocks, err := store.AddFile("/data/events.log", 10<<30) // 10 GB
	if err != nil {
		return err
	}
	fmt.Printf("stored /data/events.log: %d blocks x 128 MB, replication 2\n", len(blocks))
	fmt.Printf("bytes per node: %v\n", store.BytesOn())

	// One map task per split (the paper's implementation does exactly this),
	// running remote costs 3x (the block must cross the network).
	loc, err := lasmq.LocalityFromDFS(store, "/data/events.log", 3)
	if err != nil {
		return err
	}
	spec := lasmq.JobSpec{
		ID: 1, Name: "scan-events", Priority: 1,
		Stages: []lasmq.StageSpec{{Name: "map", Tasks: mapTasks(store.Splits("/data/events.log"), 20)}},
	}

	scheduler, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		return err
	}
	cfg := lasmq.DefaultLiveClusterConfig()
	cfg.TimeScale = 200 * time.Microsecond

	cluster, err := lasmq.NewLiveCluster(cfg, scheduler)
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Shutdown()

	if err := cluster.SubmitWithLocality(spec, loc); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	reports, err := cluster.Drain(ctx)
	if err != nil {
		return err
	}
	r := reports[0]
	fmt.Printf("\nscan finished in %.0f cluster-seconds\n", r.Response)
	fmt.Printf("map placement: %d node-local, %d remote (3x slower each)\n",
		r.LocalTasks, r.RemoteTasks)
	fmt.Println("\nBalanced block placement plus replication keeps almost every map")
	fmt.Println("task on a node that already holds its data.")
	return nil
}

func mapTasks(n int, seconds float64) []lasmq.TaskSpec {
	tasks := make([]lasmq.TaskSpec, n)
	for i := range tasks {
		tasks[i] = lasmq.TaskSpec{Duration: seconds, Containers: 1}
	}
	return tasks
}
