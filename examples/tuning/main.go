// Parameter tuning: sweep LAS_MQ's number of queues, first threshold and
// cross-queue weight decay on the Table I workload (the paper's Fig. 8
// methodology applied to the testbed simulator) to see how robust the
// defaults are.
//
// Run with:
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"

	"lasmq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	wcfg := lasmq.DefaultWorkloadConfig()
	wcfg.MeanInterval = 50
	wcfg.Seed = 3
	specs, err := lasmq.GenerateWorkload(wcfg)
	if err != nil {
		return err
	}
	cluster := lasmq.DefaultClusterConfig()

	fair, err := lasmq.RunCluster(specs, lasmq.NewFair(), cluster)
	if err != nil {
		return err
	}
	fairMean := fair.MeanResponseTime()
	fmt.Printf("FAIR baseline mean response: %.0f s\n", fairMean)
	fmt.Println("normalized response time vs FAIR (higher is better):")

	runWith := func(mutate func(*lasmq.SchedulerConfig)) (float64, error) {
		cfg := lasmq.DefaultSchedulerConfig()
		mutate(&cfg)
		mq, err := lasmq.NewScheduler(cfg)
		if err != nil {
			return 0, err
		}
		res, err := lasmq.RunCluster(specs, mq, cluster)
		if err != nil {
			return 0, err
		}
		return fairMean / res.MeanResponseTime(), nil
	}

	fmt.Println("\nnumber of queues (threshold 100, step 10):")
	fmt.Println("          basic MLQ   full design (stage awareness + ordering)")
	for _, k := range []int{1, 2, 4, 5, 10, 15} {
		basic, err := runWith(func(c *lasmq.SchedulerConfig) {
			c.Queues = k
			c.StageAware = false
			c.OrderByDemand = false
		})
		if err != nil {
			return err
		}
		full, err := runWith(func(c *lasmq.SchedulerConfig) { c.Queues = k })
		if err != nil {
			return err
		}
		fmt.Printf("  k=%-3d   %9.2f   %9.2f\n", k, basic, full)
	}

	fmt.Println("\nfirst-queue threshold (10 queues, step 10):")
	for _, alpha := range []float64{1, 10, 100, 1000, 10000} {
		norm, err := runWith(func(c *lasmq.SchedulerConfig) { c.FirstThreshold = alpha })
		if err != nil {
			return err
		}
		fmt.Printf("  alpha0=%-6g -> %.2f\n", alpha, norm)
	}

	fmt.Println("\ncross-queue weight decay:")
	for _, decay := range []float64{1, 2, 4, 8, 16} {
		norm, err := runWith(func(c *lasmq.SchedulerConfig) { c.QueueWeightDecay = decay })
		if err != nil {
			return err
		}
		fmt.Printf("  decay=%-4g -> %.2f\n", decay, norm)
	}

	fmt.Println("\nWith the basic multilevel queue, the queue count is what separates")
	fmt.Println("large jobs from small ones; the full design's in-queue ordering and")
	fmt.Println("stage awareness make every knob forgiving across orders of magnitude.")
	return nil
}
