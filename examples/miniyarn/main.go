// Mini-YARN: run LAS_MQ on a *live* concurrent cluster instead of a
// simulation — a ResourceManager goroutine scheduling real (time-scaled)
// task attempts across NodeManager goroutines, mirroring the paper's plug-in
// scheduler deployment (its Fig. 4). One wall-clock millisecond represents
// one cluster second, so the paper's testbed-sized workload runs in seconds.
//
// Run with:
//
//	go run ./examples/miniyarn
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"lasmq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mq, err := lasmq.NewScheduler(lasmq.DefaultSchedulerConfig())
	if err != nil {
		return err
	}
	cfg := lasmq.DefaultLiveClusterConfig()
	cfg.TimeScale = 500 * time.Microsecond // 1 cluster second = 0.5 ms

	cluster, err := lasmq.NewLiveCluster(cfg, mq)
	if err != nil {
		return err
	}
	cluster.Start()
	defer cluster.Shutdown()

	// Submit a shrunken Table I-style mix: two heavy jobs up front, small
	// and medium jobs trickling in behind them.
	specs := []lasmq.JobSpec{
		mapReduce(1, "wordcount-100g", 120, 40, 16, 60),
		mapReduce(2, "seqcount-30g", 60, 25, 12, 30),
		mapReduce(3, "histogram-10g", 24, 15, 6, 15),
		mapReduce(4, "selfjoin-1g", 12, 8, 2, 10),
		mapReduce(5, "teragen-1g", 10, 8, 2, 8),
		mapReduce(6, "classification-10g", 24, 15, 6, 15),
	}
	start := time.Now()
	for i, spec := range specs {
		if err := cluster.Submit(spec); err != nil {
			return err
		}
		if i < len(specs)-1 {
			time.Sleep(15 * time.Millisecond) // 30 cluster-seconds apart
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	reports, err := cluster.Drain(ctx)
	if err != nil {
		return err
	}

	sort.Slice(reports, func(i, j int) bool { return reports[i].ID < reports[j].ID })
	fmt.Printf("live cluster drained in %v wall time (%d nodes x %d containers)\n\n",
		time.Since(start).Round(time.Millisecond), cfg.Nodes, cfg.ContainersPerNode)
	fmt.Printf("%-20s %16s %16s\n", "job", "response (s)", "service (ctr-s)")
	for _, r := range reports {
		fmt.Printf("%-20s %16.0f %16.0f\n", r.Name, r.Response, r.Service)
	}
	fmt.Println("\nThe two heavy jobs were demoted to lower queues while the small jobs")
	fmt.Println("flowed through the top queues — on a real concurrent scheduler, not a")
	fmt.Println("discrete-event simulation.")
	return nil
}

func mapReduce(id int, name string, nMap int, mapSec float64, nReduce int, redSec float64) lasmq.JobSpec {
	maps := make([]lasmq.TaskSpec, nMap)
	for i := range maps {
		maps[i] = lasmq.TaskSpec{Duration: mapSec, Containers: 1}
	}
	reduces := make([]lasmq.TaskSpec, nReduce)
	for i := range reduces {
		reduces[i] = lasmq.TaskSpec{Duration: redSec, Containers: 2}
	}
	return lasmq.JobSpec{
		ID: id, Name: name, Priority: 1,
		Stages: []lasmq.StageSpec{
			{Name: "map", Tasks: maps},
			{Name: "reduce", Tasks: reduces},
		},
	}
}
