// Geo-distributed analytics: the paper's Discussion-section scenario where
// "network transfer times could be comparable or even larger than the CPU
// times". Queries run over data spread across three sites connected by slow,
// variable WAN links. Two experiments separate the two bottlenecks the paper
// says must be coupled: task placement against the network, and job ordering
// against the heavy scans.
//
// Run with:
//
//	go run ./examples/geo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"lasmq"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := placementExperiment(); err != nil {
		return err
	}
	fmt.Println()
	return orderingExperiment()
}

// placementExperiment: moderate load, expensive transfers — where the tasks
// run dominates.
func placementExperiment() error {
	var specs []lasmq.GeoJob
	for i := 0; i < 6; i++ {
		specs = append(specs, geoJob(i+1, "etl", float64(5*i), 9, 5, 10))
	}
	cfg := lasmq.DefaultGeoConfig()
	cfg.SiteContainers = []int{8, 8, 8}
	cfg.BaseBandwidth = 0.5 // slow WAN: moving 10 data units costs ~20 s

	fmt.Println("experiment 1 — task placement on a slow WAN (same Fair scheduler):")
	for _, placement := range []lasmq.GeoPlacement{lasmq.GeoPlaceBlind, lasmq.GeoPlaceLocalityAware} {
		gcfg := cfg
		gcfg.Placement = placement
		res, err := lasmq.RunGeo(specs, lasmq.NewFair(), gcfg)
		if err != nil {
			return err
		}
		var transfer float64
		remote := 0
		for _, jr := range res.Jobs {
			transfer += jr.TransferTime
			remote += jr.RemoteTasks
		}
		fmt.Printf("  %-16s mean response %6.1f s, %2d remote tasks, %5.0f s transferring\n",
			placement, res.MeanResponseTime(), remote, transfer)
	}
	fmt.Println("  Running tasks next to their data removes the WAN from the critical path.")
	return nil
}

// orderingExperiment: heavy contention with fine-grained tasks — where the
// job order dominates.
func orderingExperiment() error {
	r := rand.New(rand.NewSource(7))
	var specs []lasmq.GeoJob
	arrival := 0.0
	for i := 1; i <= 30; i++ {
		arrival += r.ExpFloat64() * 8
		if i%5 == 0 {
			specs = append(specs, geoJob(i, "heavy-scan", arrival, 400, 5, 2))
		} else {
			specs = append(specs, geoJob(i, "interactive", arrival, 12, 3, 2))
		}
	}
	cfg := lasmq.DefaultGeoConfig()
	cfg.SiteContainers = []int{6, 6, 6}

	fmt.Println("experiment 2 — job ordering under contention (locality-aware placement):")
	policies := map[string]func() (lasmq.Scheduler, error){
		"FIFO":   func() (lasmq.Scheduler, error) { return lasmq.NewFIFO(), nil },
		"FAIR":   func() (lasmq.Scheduler, error) { return lasmq.NewFair(), nil },
		"LAS_MQ": mq,
	}
	for _, name := range []string{"FIFO", "FAIR", "LAS_MQ"} {
		p, err := policies[name]()
		if err != nil {
			return err
		}
		res, err := lasmq.RunGeo(specs, p, cfg)
		if err != nil {
			return err
		}
		var interactive float64
		n := 0
		for _, jr := range res.Jobs {
			if jr.Name == "interactive" {
				interactive += jr.ResponseTime
				n++
			}
		}
		fmt.Printf("  %-7s mean response %6.1f s (interactive queries: %5.1f s)\n",
			name, res.MeanResponseTime(), interactive/float64(n))
	}
	fmt.Println("  LAS_MQ demotes the heavy scans without knowing any query sizes;")
	fmt.Println("  interactive queries stop queueing behind them.")
	return nil
}

func mq() (lasmq.Scheduler, error) {
	cfg := lasmq.DefaultSchedulerConfig()
	cfg.FirstThreshold = 10
	return lasmq.NewScheduler(cfg)
}

func geoJob(id int, name string, arrival float64, tasks int, compute, dataSize float64) lasmq.GeoJob {
	ts := make([]lasmq.GeoTask, tasks)
	for i := range ts {
		ts[i] = lasmq.GeoTask{Compute: compute, DataSite: i % 3, DataSize: dataSize}
	}
	return lasmq.GeoJob{ID: id, Name: name, Arrival: arrival, Priority: 1, Tasks: ts}
}
