package lasmq_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"lasmq"
)

func TestRunReplicatedFacade(t *testing.T) {
	dir := t.TempDir()
	ropts := lasmq.ReplicationOptions{Seeds: 2, BaseSeed: 1, Workers: 2, CacheDir: dir}
	report, err := lasmq.RunReplicated(lasmq.ExperimentOptions{}, ropts, "fig1")
	if err != nil {
		t.Fatal(err)
	}
	agg := report.Aggregate("fig1")
	if agg == nil {
		t.Fatal("fig1 aggregate missing")
	}
	// Fig. 1 is deterministic: job A must report 9 (LAS) and 6 (2-queue)
	// with a zero-width interval at every seed.
	a := agg.Cell("A", "las")
	if a == nil || math.Abs(a.Stats.Mean-9) > 1e-2 || a.Stats.CI95 != 0 {
		t.Errorf("cell (A, las) = %+v, want mean 9 with zero-width CI", a)
	}
	if c := agg.Cell("A", "lasmq"); c == nil || math.Abs(c.Stats.Mean-6) > 1e-2 {
		t.Errorf("cell (A, lasmq) = %+v, want mean ~6", c)
	}
	if report.CacheMisses != 2 || report.CacheHits != 0 {
		t.Errorf("first run: %d hits / %d misses, want 0/2", report.CacheHits, report.CacheMisses)
	}

	again, err := lasmq.RunReplicated(lasmq.ExperimentOptions{}, ropts, "fig1")
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHits != 2 || again.CacheMisses != 0 {
		t.Errorf("cached run: %d hits / %d misses, want 2/0", again.CacheHits, again.CacheMisses)
	}

	var csv bytes.Buffer
	if err := report.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "experiment,group,key,n,mean") {
		t.Errorf("CSV header missing:\n%s", csv.String())
	}

	names := lasmq.ExperimentNames()
	if len(names) == 0 || names[0] != "fig1" {
		t.Errorf("experiment names = %v", names)
	}
	if _, err := lasmq.RunReplicated(lasmq.ExperimentOptions{}, ropts, "not-a-figure"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunExperimentsCustomTable(t *testing.T) {
	exps := []lasmq.RegisteredExperiment{{
		Name: "custom",
		Run: func(seed int64) (*lasmq.ExperimentSample, error) {
			return &lasmq.ExperimentSample{
				Experiment: "custom",
				Cells:      []lasmq.MetricCell{{Group: "g", Key: "k", Value: float64(seed)}},
			}, nil
		},
	}}
	report, err := lasmq.RunExperiments(exps, lasmq.ReplicationOptions{Seeds: 3, BaseSeed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := report.Aggregate("custom").Cell("g", "k")
	if c == nil || c.Stats.Mean != 6 || c.Stats.Min != 5 || c.Stats.Max != 7 {
		t.Errorf("custom cell = %+v, want mean 6 over seeds 5..7", c)
	}
}
