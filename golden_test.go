package lasmq_test

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"lasmq"
)

// goldenNormalized parses full_results.txt and returns, per figure section,
// each row label's "norm(vs FAIR)" (the rightmost numeric column of the
// section's table). The golden file is the checked-in paper-scale
// reproduction; these ratios are its shape.
func goldenNormalized(t *testing.T, section string) map[string]float64 {
	t.Helper()
	f, err := os.Open("full_results.txt")
	if err != nil {
		t.Fatalf("golden file: %v", err)
	}
	defer f.Close()

	out := make(map[string]float64)
	in := false
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "== ") {
			in = strings.Contains(line, section)
			continue
		}
		if !in || line == "" || strings.HasPrefix(line, "[") {
			in = in && line != "" && !strings.HasPrefix(line, "[")
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || strings.HasPrefix(fields[0], "-") {
			continue
		}
		// Skip header rows (last column not numeric) and the slowdown
		// subtable (its label column repeats policies; the first numeric
		// parse wins, which is the normalized table since it comes first).
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		if _, dup := out[fields[0]]; !dup {
			out[fields[0]] = v
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatalf("no golden rows found for section %q", section)
	}
	return out
}

// clearOrder returns -1/+1 when a is clearly below/above b (relative margin),
// 0 when the pair is effectively tied.
func clearOrder(a, b, margin float64) int {
	if a < b*(1-margin) {
		return -1
	}
	if a > b*(1+margin) {
		return 1
	}
	return 0
}

// TestGoldenShapesSeeds1 regenerates the paper figures through the
// replication engine at -seeds 1 and asserts the checked-in
// full_results.txt shapes still hold: wherever the golden file clearly
// ranks two policies (ratios, not absolute values), the fresh run must rank
// them the same way. Trace experiments run at reduced length to stay inside
// test time; ratio orderings are scale-stable.
func TestGoldenShapesSeeds1(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment regeneration in -short mode")
	}
	opts := lasmq.ExperimentOptions{TraceJobs: 3000, UniformJobs: 400}
	report, err := lasmq.RunReplicated(opts,
		lasmq.ReplicationOptions{Seeds: 1, BaseSeed: 1, Workers: 1},
		"fig5", "fig6", "fig7a", "fig7b", "fig8a")
	if err != nil {
		t.Fatal(err)
	}

	const margin = 0.20 // golden ratios must differ by >20 % to bind
	policies := []string{"LAS_MQ", "LAS", "FAIR", "FIFO"}

	checks := []struct {
		figure  string
		section string
	}{
		{figure: "fig5", section: "80 s mean arrival interval"},
		{figure: "fig6", section: "50 s mean arrival interval"},
		{figure: "fig7a", section: "Fig. 7a"},
		{figure: "fig7b", section: "Fig. 7b"},
	}
	for _, chk := range checks {
		golden := goldenNormalized(t, chk.section)
		agg := report.Aggregate(chk.figure)
		if agg == nil {
			t.Fatalf("%s aggregate missing", chk.figure)
		}
		for i := range policies {
			for j := i + 1; j < len(policies); j++ {
				a, b := policies[i], policies[j]
				ga, aok := golden[a]
				gb, bok := golden[b]
				if !aok || !bok {
					t.Fatalf("%s: golden rows missing for %s/%s", chk.figure, a, b)
				}
				ca, cb := agg.Cell(a, "norm"), agg.Cell(b, "norm")
				if ca == nil || cb == nil {
					t.Fatalf("%s: computed norm cells missing for %s/%s", chk.figure, a, b)
				}
				gCmp := clearOrder(ga, gb, margin)
				cCmp := clearOrder(ca.Stats.Mean, cb.Stats.Mean, margin)
				if gCmp != 0 && cCmp != 0 && gCmp != cCmp {
					t.Errorf("%s: golden ranks %s (%.2f) vs %s (%.2f) opposite to regenerated (%.2f vs %.2f)",
						chk.figure, a, ga, b, gb, ca.Stats.Mean, cb.Stats.Mean)
				}
			}
		}
	}

	// Fig. 8a shape: the golden sweep improves with the queue count and the
	// regenerated sweep must too — k=10 clearly beats k=1, no deep dips.
	golden8a := goldenNormalized(t, "Fig. 8a")
	agg := report.Aggregate("fig8a")
	if agg == nil {
		t.Fatal("fig8a aggregate missing")
	}
	if golden8a["10"] <= golden8a["1"] {
		t.Fatalf("golden fig8a lost its shape: k=10 %.2f vs k=1 %.2f", golden8a["10"], golden8a["1"])
	}
	k1, k10 := agg.Cell("k=1", "norm"), agg.Cell("k=10", "norm")
	if k1 == nil || k10 == nil {
		t.Fatal("fig8a cells missing")
	}
	if k10.Stats.Mean <= k1.Stats.Mean {
		t.Errorf("regenerated fig8a: k=10 (%.2f) no longer beats k=1 (%.2f)", k10.Stats.Mean, k1.Stats.Mean)
	}
	prev := 0.0
	for _, k := range []int{1, 2, 4, 5, 10} {
		c := agg.Cell(fmt.Sprintf("k=%d", k), "norm")
		if c == nil {
			t.Fatalf("fig8a cell k=%d missing", k)
		}
		if c.Stats.Mean < prev*0.9 {
			t.Errorf("fig8a no longer improves with k: k=%d at %.2f after %.2f", k, c.Stats.Mean, prev)
		}
		prev = c.Stats.Mean
	}
}
