package lasmq_test

import (
	"math"
	"math/rand"
	"testing"

	"lasmq/internal/engine"
	"lasmq/internal/fluid"
	"lasmq/internal/job"
	"lasmq/internal/sched"
)

// The task-level engine and the fluid simulator model the same cluster at
// different granularities. For workloads expressible in both — single-stage
// jobs of unit-container tasks — their results must agree up to task
// granularity. This cross-check catches modeling bugs in either engine.

// crossJob returns the same job in both representations: n tasks of the
// given duration, so size = n*duration and width = n.
func crossJob(id int, arrival float64, n int, duration float64) (job.Spec, fluid.JobSpec) {
	tasks := make([]job.TaskSpec, n)
	for i := range tasks {
		tasks[i] = job.TaskSpec{Duration: duration, Containers: 1}
	}
	e := job.Spec{
		ID: id, Name: "cross", Bin: 1, Priority: 1, Arrival: arrival,
		Stages: []job.StageSpec{{Name: "map", Tasks: tasks}},
	}
	f := fluid.JobSpec{
		ID: id, Arrival: arrival,
		Size:  float64(n) * duration,
		Width: float64(n), Priority: 1,
	}
	return e, f
}

func crossCheck(t *testing.T, seed int64, policyName string, mkEngine, mkFluid func() sched.Scheduler) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	const (
		capacity = 16
		duration = 4.0
	)
	var (
		eSpecs []job.Spec
		fSpecs []fluid.JobSpec
	)
	arrival := 0.0
	for i := 1; i <= 12; i++ {
		arrival += r.ExpFloat64() * 10
		n := 1 + r.Intn(24)
		e, f := crossJob(i, arrival, n, duration)
		eSpecs = append(eSpecs, e)
		fSpecs = append(fSpecs, f)
	}

	eRes, err := engine.Run(eSpecs, mkEngine(), engine.Config{Containers: capacity})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	fRes, err := fluid.Run(fSpecs, mkFluid(), fluid.Config{Capacity: capacity, TaskDuration: duration})
	if err != nil {
		t.Fatalf("fluid: %v", err)
	}

	for i := range eSpecs {
		eResp := eRes.Jobs[i].ResponseTime
		fResp := fRes.Jobs[i].ResponseTime
		// Task granularity: the engine can only reallocate at task
		// boundaries, so allow a couple of task durations plus 20%.
		tolerance := 2*duration + 0.2*math.Max(eResp, fResp)
		if math.Abs(eResp-fResp) > tolerance {
			t.Errorf("%s seed %d job %d: engine response %.2f vs fluid %.2f (tolerance %.2f)",
				policyName, seed, eSpecs[i].ID, eResp, fResp, tolerance)
		}
	}
}

func TestEnginesAgreeFIFO(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		crossCheck(t, seed, "FIFO",
			func() sched.Scheduler { return sched.NewFIFO() },
			func() sched.Scheduler { return sched.NewFIFO() })
	}
}

func TestEnginesAgreeSJF(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		crossCheck(t, seed, "SJF",
			func() sched.Scheduler { return sched.NewSJF() },
			func() sched.Scheduler { return sched.NewSJF() })
	}
}

func TestEnginesAgreeFair(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		crossCheck(t, seed, "FAIR",
			func() sched.Scheduler { return sched.NewFair() },
			func() sched.Scheduler { return sched.NewFair() })
	}
}

// TestEnginesAgreeSequentialExact pins an exactly computable case in both
// engines: jobs that each fill the whole cluster run strictly one after
// another under FIFO.
func TestEnginesAgreeSequentialExact(t *testing.T) {
	const capacity = 8
	var (
		eSpecs []job.Spec
		fSpecs []fluid.JobSpec
	)
	for i := 1; i <= 4; i++ {
		e, f := crossJob(i, 0, capacity, 10)
		eSpecs = append(eSpecs, e)
		fSpecs = append(fSpecs, f)
	}
	eRes, err := engine.Run(eSpecs, sched.NewFIFO(), engine.Config{Containers: capacity})
	if err != nil {
		t.Fatal(err)
	}
	fRes, err := fluid.Run(fSpecs, sched.NewFIFO(), fluid.Config{Capacity: capacity, TaskDuration: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := float64((i + 1) * 10)
		if got := eRes.Jobs[i].ResponseTime; math.Abs(got-want) > 1e-9 {
			t.Errorf("engine job %d response = %v, want %v", i+1, got, want)
		}
		if got := fRes.Jobs[i].ResponseTime; math.Abs(got-want) > 1e-6 {
			t.Errorf("fluid job %d response = %v, want %v", i+1, got, want)
		}
	}
}
